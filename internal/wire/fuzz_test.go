package wire

import (
	"testing"

	"ffc/internal/topology"
)

// FuzzParseDemands guards the demands parser against malformed inputs: it
// must return an error or a valid matrix, never panic.
func FuzzParseDemands(f *testing.F) {
	f.Add([]byte(`{"demands":[{"src":"s2","dst":"s4","demand":7}]}`))
	f.Add([]byte(`{"demands":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"demands":[{"src":"s2","dst":"s2","demand":-1}]}`))
	net := topology.Example4()
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseDemands(net, data)
		if err != nil {
			return
		}
		for fl, d := range m {
			if d < 0 {
				t.Fatalf("negative demand %v for %v accepted", d, fl)
			}
			if fl.Src == fl.Dst {
				t.Fatalf("self-flow %v accepted", fl)
			}
		}
	})
}

// FuzzParseUpdate guards the ffcd streaming-protocol decoder: a malformed
// frame must error, never panic, and anything accepted must re-encode and
// re-parse (the protocol is its own round-trip oracle).
func FuzzParseUpdate(f *testing.F) {
	f.Add([]byte(`{"op":"demands","demands":[{"src":"s2","dst":"s4","demand":7}]}`))
	f.Add([]byte(`{"op":"demands","reset":true}`))
	f.Add([]byte(`{"op":"link","src":"s1","dst":"s2","up":false}`))
	f.Add([]byte(`{"op":"switch","switch":"s3","up":true}`))
	f.Add([]byte(`{"op":"protection","kc":2,"ke":1,"kv":0}`))
	f.Add([]byte(`{"op":"protection","kc":-1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"op":"demands","demands":[{"src":"a","dst":"a","demand":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := ParseUpdate(data)
		if err != nil {
			return
		}
		blob, err := EncodeUpdate(u)
		if err != nil {
			t.Fatalf("accepted update fails to encode: %v (%+v)", err, u)
		}
		if _, err := ParseUpdate(blob); err != nil {
			t.Fatalf("re-encoded update fails to parse: %v (%s)", err, blob)
		}
	})
}
