// Package sortnet encodes "bounded M-sum" constraints into linear programs
// using partial sorting networks, the core constraint-reduction technique of
// the FFC paper (§4.4).
//
// The bounded M-sum problem asks that the sum of any M out of N quantities
// stay below a bound B. Naively this is C(N,M) constraints; all of them hold
// iff the sum of the *largest* M quantities is ≤ B. This package emits, for
// a slice of LP expressions, auxiliary variables y₁…y_M and O(N·M) linear
// constraints such that in every feasible assignment Σyⱼ upper-bounds the
// sum of the M largest expressions (Algorithms 1 and 2 of the paper).
// A symmetric construction lower-bounds the sum of the M smallest.
//
// The construction is a partial bubble-sort network: pass j extracts (an
// over-approximation of) the j-th largest value. Each compare-swap on wires
// (x, y) introduces hi, lo with
//
//	hi ≥ x,  hi ≥ y,  hi + lo = x + y,
//
// which is the paper's 2·hi = x + y + |x−y| encoding after eliminating the
// absolute-value auxiliary (|x−y| = 2·hi − x − y ≥ ±(x−y)). Soundness: hi
// upper-bounds max(x,y) while the pair conserves the sum, so any slack an
// adversarial solution adds to hi is exactly removed from lo and cannot
// reduce the final Σyⱼ.
//
// The package also provides the compact "top-k" dual encoding
// (Σ largest-M nᵢ ≤ B  ⟺  ∃s, tᵢ ≥ 0: M·s + Σtᵢ ≤ B, tᵢ ≥ nᵢ − s) used as
// an ablation baseline, and a full Batcher odd-even merge sorting network
// used by tests as an oracle for network construction.
package sortnet

import (
	"fmt"

	"ffc/internal/lp"
	"ffc/internal/obs"
)

// Encoding-size counters: per-process totals of what the encoders emit,
// split by technique so a regression in the O(N·M) advantage of the
// network over naive enumeration shows up directly in -stats output.
var (
	obsNetEncodings   = obs.NewCounter("sortnet.network.encodings")
	obsNetComparators = obs.NewCounter("sortnet.network.comparators")
	obsNetVars        = obs.NewCounter("sortnet.network.vars")
	obsNetCons        = obs.NewCounter("sortnet.network.constraints")
	obsCmpEncodings   = obs.NewCounter("sortnet.compact.encodings")
	obsCmpVars        = obs.NewCounter("sortnet.compact.vars")
	obsCmpCons        = obs.NewCounter("sortnet.compact.constraints")
)

// Result carries the outputs of a partial sorting-network encoding.
type Result struct {
	// Ranked[j] is an expression for the (j+1)-th largest (or smallest)
	// input: a single auxiliary LP variable per rank.
	Ranked []*lp.Expr
	// Sum is Σ Ranked, the bound on the M-sum.
	Sum *lp.Expr
	// Vars is the number of auxiliary variables added to the model.
	Vars int
	// Constraints is the number of constraints added to the model.
	Constraints int
	// Comparators is the number of compare-swap operators emitted (zero
	// for the compact encodings, which have none).
	Comparators int
}

// LargestSum adds a partial bubble network over exprs to m and returns an
// expression that, in any feasible assignment, is ≥ the sum of the M largest
// input expressions. Using it on the left side of a ≤ constraint yields the
// exact bounded M-sum semantics (the LP can always set the auxiliaries to
// the true sorted values). M is clamped to [0, len(exprs)].
//
// Inputs are assumed bounded below in the model (the usual case: FFC inputs
// are non-negative traffic quantities); the auxiliaries are created as free
// variables so negative inputs are handled too.
//
// The comparator network for a given (len(exprs), M) is derived once and
// memoized (see cache.go); each call stamps the cached template into m. The
// emitter may be a *lp.Model or a *lp.Batch for parallel block emission.
func LargestSum(m lp.Emitter, exprs []*lp.Expr, M int, name string) Result {
	return partialSort(m, exprs, M, name, true)
}

// SmallestSum is the symmetric construction: the returned expression is
// ≤ the sum of the M smallest inputs in any feasible assignment, for use on
// the left side of a ≥ constraint (Eqn 15 of the paper).
func SmallestSum(m lp.Emitter, exprs []*lp.Expr, M int, name string) Result {
	return partialSort(m, exprs, M, name, false)
}

func partialSort(m lp.Emitter, exprs []*lp.Expr, M int, name string, largest bool) Result {
	if M < 0 {
		M = 0
	}
	if M > len(exprs) {
		M = len(exprs)
	}
	if M == 0 {
		return Result{Sum: lp.NewExpr()}
	}
	res := templateFor(largest, len(exprs), M).stamp(m, exprs, name, largest)
	obsNetEncodings.Inc()
	obsNetComparators.Add(int64(res.Comparators))
	obsNetVars.Add(int64(res.Vars))
	obsNetCons.Add(int64(res.Constraints))
	return res
}

// compareSwap emits one compare-swap operator. For largest=true, hi is an
// over-approximation of max(x, y) and lo the complementary wire; for
// largest=false the roles flip (hi under-approximates min).
func compareSwap(m lp.Emitter, x, y *lp.Expr, name string, largest bool) (hi, lo *lp.Expr) {
	vh := m.NewVar(name+".h", negInf(), lp.Inf)
	vl := m.NewVar(name+".l", negInf(), lp.Inf)
	he := lp.NewExpr().Add(1, vh)
	le := lp.NewExpr().Add(1, vl)
	if largest {
		// vh ≥ x, vh ≥ y
		m.AddGE(lp.NewExpr().Add(1, vh).AddExpr(-1, x), 0)
		m.AddGE(lp.NewExpr().Add(1, vh).AddExpr(-1, y), 0)
	} else {
		// vh ≤ x, vh ≤ y
		m.AddLE(lp.NewExpr().Add(1, vh).AddExpr(-1, x), 0)
		m.AddLE(lp.NewExpr().Add(1, vh).AddExpr(-1, y), 0)
	}
	// vh + vl = x + y (sum conservation)
	m.AddEQ(lp.NewExpr().Add(1, vh).Add(1, vl).AddExpr(-1, x).AddExpr(-1, y), 0)
	return he, le
}

func negInf() float64 { return -lp.Inf }

// TopKCompact adds the compact dual encoding of "sum of the M largest of
// exprs" and returns an expression that upper-bounds it:
//
//	M·s + Σ tᵢ   with  tᵢ ≥ exprᵢ − s,  tᵢ ≥ 0,  s free.
//
// This is the classic exact LP representation of the sum-of-k-largest
// (CVaR-style) constraint; it uses N+1 variables and N constraints versus
// the sorting network's O(N·M). It exists as an ablation/validation
// alternative to the paper's sorting-network encoding.
func TopKCompact(m lp.Emitter, exprs []*lp.Expr, M int, name string) Result {
	if M < 0 {
		M = 0
	}
	if M > len(exprs) {
		M = len(exprs)
	}
	res := Result{Sum: lp.NewExpr()}
	if M == 0 {
		return res
	}
	s := m.NewVar(name+".s", negInf(), lp.Inf)
	res.Vars++
	sum := lp.NewExpr().Add(float64(M), s)
	for i, e := range exprs {
		t := m.NewVar(fmt.Sprintf("%s.t%d", name, i), 0, lp.Inf)
		res.Vars++
		// t ≥ e − s
		m.AddGE(lp.NewExpr().Add(1, t).Add(1, s).AddExpr(-1, e), 0)
		res.Constraints++
		sum.Add(1, t)
	}
	res.Sum = sum
	publishCompact(&res)
	return res
}

func publishCompact(res *Result) {
	obsCmpEncodings.Inc()
	obsCmpVars.Add(int64(res.Vars))
	obsCmpCons.Add(int64(res.Constraints))
}

// BottomKCompact is the symmetric compact encoding lower-bounding the sum of
// the M smallest inputs: M·s − Σ tᵢ with tᵢ ≥ s − exprᵢ, tᵢ ≥ 0.
func BottomKCompact(m lp.Emitter, exprs []*lp.Expr, M int, name string) Result {
	if M < 0 {
		M = 0
	}
	if M > len(exprs) {
		M = len(exprs)
	}
	res := Result{Sum: lp.NewExpr()}
	if M == 0 {
		return res
	}
	s := m.NewVar(name+".s", negInf(), lp.Inf)
	res.Vars++
	sum := lp.NewExpr().Add(float64(M), s)
	for i, e := range exprs {
		t := m.NewVar(fmt.Sprintf("%s.t%d", name, i), 0, lp.Inf)
		res.Vars++
		// t ≥ s − e
		m.AddGE(lp.NewExpr().Add(1, t).Add(-1, s).AddExpr(1, e), 0)
		res.Constraints++
		sum.Add(-1, t)
	}
	res.Sum = sum
	publishCompact(&res)
	return res
}
