package ffc

import (
	"math"
	"testing"
)

func exampleController(t *testing.T) (*Controller, Flow, Flow, Flow) {
	t.Helper()
	net := Example4Topology()
	s1, _ := net.SwitchByName("s1")
	s2, _ := net.SwitchByName("s2")
	s3, _ := net.SwitchByName("s3")
	s4, _ := net.SwitchByName("s4")
	f24 := Flow{Src: s2, Dst: s4}
	f34 := Flow{Src: s3, Dst: s4}
	f14 := Flow{Src: s1, Dst: s4}
	ctl, err := NewController(net, []Flow{f24, f34, f14}, ControllerConfig{TunnelsPerFlow: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ctl, f24, f34, f14
}

func TestControllerComputeInstall(t *testing.T) {
	ctl, f24, f34, _ := exampleController(t)
	st, stats, err := ctl.Compute(Demands{f24: 10, f34: 10}, NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.TotalRate()-20) > 1e-6 {
		t.Fatalf("throughput %v", st.TotalRate())
	}
	if stats.SolveTime <= 0 {
		t.Fatal("missing stats")
	}
	ctl.Install(st)
	if ctl.Current().TotalRate() != st.TotalRate() {
		t.Fatal("install did not take")
	}
	// Install clones: mutating st must not affect the controller.
	st.Rate[f24] = 0
	if ctl.Current().Rate[f24] == 0 {
		t.Fatal("Install aliased caller state")
	}
}

func TestControllerFFCGuarantee(t *testing.T) {
	ctl, f24, f34, _ := exampleController(t)
	st, _, err := ctl.Compute(Demands{f24: 14, f34: 6}, Protection{Ke: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := ctl.VerifyDataPlane(st, 1, 0); v != nil {
		t.Fatalf("guarantee violated: %+v", v)
	}
	plain, _, err := ctl.Compute(Demands{f24: 14, f34: 6}, NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	if v := ctl.VerifyDataPlane(plain, 1, 0); v == nil {
		t.Fatal("plain TE unexpectedly 1-link safe")
	}
}

func TestControllerControlPlane(t *testing.T) {
	ctl, f24, f34, f14 := exampleController(t)
	prev, _, err := ctl.Compute(Demands{f24: 10, f34: 10}, NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Install(prev)
	st, _, err := ctl.Compute(Demands{f24: 10, f34: 10, f14: 10}, Protection{Kc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := ctl.VerifyControlPlane(st, 1); v != nil {
		t.Fatalf("control guarantee violated: %+v", v)
	}
}

func TestControllerRejectsUnroutableFlow(t *testing.T) {
	net := NewTopology("island")
	a := net.AddSwitch("a", "a", 0, 0)
	b := net.AddSwitch("b", "b", 0, 1)
	net.AddSwitch("c", "c", 0, 2) // disconnected
	net.AddDuplex(a, b, 1)
	c, _ := net.SwitchByName("c")
	_, err := NewController(net, []Flow{{Src: a, Dst: c}}, ControllerConfig{})
	if err == nil {
		t.Fatal("expected error for unroutable flow")
	}
}

func TestControllerMaxMin(t *testing.T) {
	ctl, f24, f34, _ := exampleController(t)
	st, err := ctl.ComputeMaxMin(Demands{f24: 14, f34: 14}, NoProtection, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Rate[f24]-st.Rate[f34]) > 1.2 {
		t.Fatalf("max-min shares uneven: %v / %v", st.Rate[f24], st.Rate[f34])
	}
}

func TestControllerPlanUpdate(t *testing.T) {
	ctl, f24, f34, f14 := exampleController(t)
	prev, _, err := ctl.Compute(Demands{f24: 10, f34: 10}, NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	ctl.Install(prev)
	target, _, err := ctl.Compute(Demands{f24: 10, f34: 10, f14: 10}, Protection{Kc: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ctl.PlanUpdate(target, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Reached || len(plan.Steps) == 0 {
		t.Fatalf("plan incomplete: %+v", plan)
	}
}

func TestControllerPriorities(t *testing.T) {
	ctl, f24, f34, _ := exampleController(t)
	high := Demands{f24: 3, f34: 3}
	low := Demands{f24: 20, f34: 20}
	states, err := ctl.ComputePriorities(
		[]string{"high", "low"},
		[]Demands{high, low},
		[]Protection{{Ke: 1}, {}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("%d classes", len(states))
	}
	if states[0].State.TotalRate() < 6-1e-6 {
		t.Fatalf("high class under-served: %v", states[0].State.TotalRate())
	}
	// High class keeps its data-plane guarantee.
	if v := ctl.VerifyDataPlane(states[0].State, 1, 0); v != nil {
		t.Fatalf("high class guarantee violated: %+v", v)
	}
	// Low class fills remaining capacity (well above zero).
	if states[1].State.TotalRate() <= 0 {
		t.Fatal("low class got nothing")
	}
}

func TestComputePrioritiesRejectsInvertedProtection(t *testing.T) {
	ctl, f24, _, _ := exampleController(t)
	_, err := ctl.ComputePriorities(
		[]string{"high", "low"},
		[]Demands{{f24: 1}, {f24: 1}},
		[]Protection{{}, {Ke: 1}},
	)
	if err == nil {
		t.Fatal("expected §5.1 ordering error")
	}
}

func TestGenerateDemandsAndLNet(t *testing.T) {
	net := LNetTopology(6, 3)
	if !net.Connected() {
		t.Fatal("LNet disconnected")
	}
	series := GenerateDemands(net, 4, 3)
	if len(series) != 4 || series[0].Total() <= 0 {
		t.Fatalf("bad series: %d intervals", len(series))
	}
	if SNetTopology().NumSwitches() != 24 {
		t.Fatal("SNet shape")
	}
	if TestbedTopology().NumSwitches() != 8 {
		t.Fatal("testbed shape")
	}
}

func TestControllerPlanCapacity(t *testing.T) {
	ctl, f24, _, _ := exampleController(t)
	added, total, err := ctl.PlanCapacityFor(Demands{f24: 24}, NoProtection, nil)
	if err != nil {
		t.Fatal(err)
	}
	if total < 4-1e-6 {
		t.Fatalf("expansion %v (%v), want ≥ 4 for a 24-unit demand over 20 units of path capacity", total, added)
	}
}

func TestControllerShadowPrices(t *testing.T) {
	ctl, f24, _, _ := exampleController(t)
	prices, err := ctl.ShadowPrices(Demands{f24: 30}, NoProtection)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, p := range prices {
		if p > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("saturated network has no positively-priced link")
	}
}

func TestFFCOnFatTree(t *testing.T) {
	// The paper's DCN setting: elephant flows between edge switches of a
	// fat-tree; FFC's guarantee must hold there too.
	net := FatTreeTopology(4, 10)
	edges := net.EdgeSwitches()
	flows := []Flow{
		{Src: edges[0], Dst: edges[4]},
		{Src: edges[1], Dst: edges[6]},
		{Src: edges[2], Dst: edges[7]},
	}
	ctl, err := NewController(net, flows, ControllerConfig{TunnelsPerFlow: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := Demands{flows[0]: 12, flows[1]: 12, flows[2]: 12}
	st, _, err := ctl.Compute(d, Protection{Ke: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalRate() <= 0 {
		t.Fatal("no throughput on fat-tree")
	}
	if v := ctl.VerifyDataPlane(st, 1, 0); v != nil {
		t.Fatalf("fat-tree FFC guarantee violated: %+v", v)
	}
}

func TestControllerComputeMinMLU(t *testing.T) {
	ctl, f24, _, _ := exampleController(t)
	res, err := ctl.ComputeMinMLU(Demands{f24: 14}, NoProtection, DemandUncertainty{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MLU <= 0 || res.MLU > 1 {
		t.Fatalf("MLU %v for a fitting demand", res.MLU)
	}
	if res.State.Rate[f24] < 14-1e-6 {
		t.Fatalf("MinMLU must carry the offered demand, got %v", res.State.Rate[f24])
	}
	// With demand uncertainty the planned fault ceiling appears.
	res2, err := ctl.ComputeMinMLU(Demands{f24: 14}, NoProtection, DemandUncertainty{Count: 1, Factor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FaultMLU <= 0 {
		t.Fatalf("FaultMLU missing: %+v", res2)
	}
}

func TestControllerPerCaseOptimal(t *testing.T) {
	ctl, f24, f34, _ := exampleController(t)
	d := Demands{f24: 14, f34: 6}
	ffcSt, _, err := ctl.Compute(d, Protection{Ke: 1})
	if err != nil {
		t.Fatal(err)
	}
	bound, _, err := ctl.PerCaseOptimal(d, SingleLinkFailureCases(ctl.Network()))
	if err != nil {
		t.Fatal(err)
	}
	if ffcSt.TotalRate() > bound.TotalRate()+1e-6 {
		t.Fatalf("FFC %v exceeds per-case bound %v", ffcSt.TotalRate(), bound.TotalRate())
	}
}
