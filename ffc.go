// Package ffc is a production-style implementation of Forward Fault
// Correction (FFC) traffic engineering, reproducing "Traffic Engineering
// with Forward Fault Correction" (SIGCOMM 2014).
//
// FFC proactively spreads traffic so that the network remains
// congestion-free under arbitrary combinations of up to kc control-plane
// faults (switches stuck on a stale configuration), ke link failures and kv
// switch failures — no detection or controller reaction needed. The
// combinatorially many fault cases are compressed into O(k·n) linear
// constraints with partial sorting networks and solved by the library's
// built-in pure-Go simplex.
//
// The top-level entry point is the Controller, a drop-in TE controller in
// the sense of the paper's §6:
//
//	net := ffc.Example4Topology()
//	s2, _ := net.SwitchByName("s2")
//	s4, _ := net.SwitchByName("s4")
//	ctl, err := ffc.NewController(net, []ffc.Flow{{Src: s2, Dst: s4}}, ffc.ControllerConfig{})
//	state, stats, err := ctl.Compute(ffc.Demands{{Src: s2, Dst: s4}: 14}, ffc.Protection{Ke: 1})
//	ctl.Install(state)
//
// Subpackages under internal/ implement the substrates: the LP solver
// (internal/lp), sorting-network encodings (internal/sortnet), topology and
// demand generators, tunnel layout, fault models, the evaluation simulator,
// and the per-figure experiment harness.
package ffc

import (
	"fmt"
	"io"
	"math/rand"

	"ffc/internal/core"
	"ffc/internal/demand"
	"ffc/internal/topology"
	"ffc/internal/tunnel"
)

// Re-exported core types: the public API is the ffc package; these aliases
// keep internal packages out of user code.
type (
	// Network is the TE graph of switches and directed capacitated links.
	Network = topology.Network
	// Switch is one forwarding element.
	Switch = topology.Switch
	// Link is one directed capacitated edge.
	Link = topology.Link
	// SwitchID indexes a switch.
	SwitchID = topology.SwitchID
	// LinkID indexes a directed link.
	LinkID = topology.LinkID
	// Flow is aggregated ingress→egress traffic.
	Flow = tunnel.Flow
	// Tunnel is one path carrying part of a flow.
	Tunnel = tunnel.Tunnel
	// TunnelSet holds every flow's tunnels.
	TunnelSet = tunnel.Set
	// Demands maps flows to their demanded bandwidth for one TE interval.
	Demands = demand.Matrix
	// State is a TE configuration: granted rates {bf} and per-tunnel
	// allocations {af,t}.
	State = core.State
	// Protection is the FFC protection level (kc, ke, kv).
	Protection = core.Protection
	// Stats reports LP size and solve time for one computation.
	Stats = core.Stats
	// SolverOptions tunes encodings and the §6 optimizations.
	SolverOptions = core.Options
	// Uncertain marks a flow whose installed configuration is unconfirmed
	// (§5.6).
	Uncertain = core.Uncertain
	// UpdatePlan is a chain of congestion-free intermediate states (§5.2).
	UpdatePlan = core.UpdatePlan
	// Violation reports a fault case that breaks a guarantee.
	Violation = core.Violation
)

// Encoding constants (how bounded-M-sum constraints are emitted).
const (
	// EncodingSortNet is the paper's partial bubble sorting network.
	EncodingSortNet = core.SortNet
	// EncodingCompact is the equivalent top-k dual encoding.
	EncodingCompact = core.Compact
	// EncodingNaive enumerates all fault cases (tiny networks only).
	EncodingNaive = core.Naive
)

// NoProtection is the zero protection level (plain TE).
var NoProtection = core.None

// NewTunnelSet returns an empty tunnel set over net for hand-laid tunnels;
// use Set.Add and pass the set to NewControllerWithTunnels.
func NewTunnelSet(net *Network) *TunnelSet { return tunnel.NewSet(net) }

// NewState returns an empty TE configuration (useful for hand-crafting a
// previously installed state).
func NewState() *State { return core.NewState() }

// Topology constructors.

// NewTopology returns an empty named network; add switches and duplex links
// and pass it to NewController.
func NewTopology(name string) *Network { return topology.NewNetwork(name) }

// LNetTopology generates the synthetic L-Net-like WAN of the evaluation.
func LNetTopology(sites int, seed int64) *Network {
	return topology.LNet(topology.LNetConfig{Sites: sites}, rand.New(rand.NewSource(seed)))
}

// SNetTopology returns the S-Net (B4 12-site) topology.
func SNetTopology() *Network { return topology.SNet() }

// TestbedTopology returns the 8-site testbed WAN of §7.
func TestbedTopology() *Network { return topology.Testbed() }

// Example4Topology returns the 4-switch walkthrough network of Figs 2–5.
func Example4Topology() *Network { return topology.Example4() }

// FatTreeTopology returns a k-ary fat-tree DCN fabric (k even); elephant
// flows run between its EdgeSwitches(), the paper's data-center TE setting.
func FatTreeTopology(k int, linkCapacity float64) *Network {
	return topology.FatTree(k, linkCapacity)
}

// ParseGraphMLTopology reads a GraphML topology (e.g. from the Internet
// Topology Zoo); defaultCapacity applies to edges without a LinkSpeedRaw
// attribute.
func ParseGraphMLTopology(r io.Reader, defaultCapacity float64) (*Network, error) {
	return topology.ParseGraphML(r, defaultCapacity)
}

// GenerateDemands produces a gravity-model demand series over net (one
// matrix per 5-minute TE interval).
func GenerateDemands(net *Network, intervals int, seed int64) []Demands {
	return demand.Generate(net, demand.Config{Intervals: intervals}, rand.New(rand.NewSource(seed)))
}

// ControllerConfig configures tunnel layout and the solver.
type ControllerConfig struct {
	// TunnelsPerFlow is |Tf| (default 6, the paper's setting).
	TunnelsPerFlow int
	// P and Q bound tunnel sharing per physical link / intermediate switch
	// (§4.3; default (1,3)).
	P, Q int
	// Solver tunes encoding, rate-limiter fault model, objective, and §6
	// optimizations.
	Solver SolverOptions
}

// Controller is a drop-in FFC TE controller: it owns the tunnel layout over
// a fixed topology, remembers the installed configuration, and computes new
// configurations at requested protection levels.
type Controller struct {
	net     *Network
	tun     *TunnelSet
	solver  *core.Solver
	current *State
}

// NewController lays out (p,q) link-switch disjoint tunnels for the given
// flows and returns a controller. Flows with no usable path are rejected.
func NewController(net *Network, flows []Flow, cfg ControllerConfig) (*Controller, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	set := tunnel.Layout(net, flows, tunnel.LayoutConfig{
		TunnelsPerFlow: cfg.TunnelsPerFlow, P: cfg.P, Q: cfg.Q,
	})
	for _, f := range flows {
		if len(set.Tunnels(f)) == 0 {
			return nil, fmt.Errorf("ffc: flow %v has no path in %q", f, net.Name)
		}
	}
	return &Controller{
		net:     net,
		tun:     set,
		solver:  core.NewSolver(net, set, cfg.Solver),
		current: core.NewState(),
	}, nil
}

// NewControllerWithTunnels uses a caller-provided tunnel layout.
func NewControllerWithTunnels(net *Network, set *TunnelSet, opts SolverOptions) *Controller {
	return &Controller{net: net, tun: set, solver: core.NewSolver(net, set, opts), current: core.NewState()}
}

// Network returns the controller's topology.
func (c *Controller) Network() *Network { return c.net }

// Tunnels returns the tunnel layout.
func (c *Controller) Tunnels() *TunnelSet { return c.tun }

// Current returns the installed configuration (empty before any Install).
func (c *Controller) Current() *State { return c.current }

// Install records st as the network's installed configuration; subsequent
// control-plane FFC computations are relative to it.
func (c *Controller) Install(st *State) { c.current = st.Clone() }

// Compute returns a TE configuration for the demands at the given
// protection level, relative to the currently installed configuration.
func (c *Controller) Compute(d Demands, prot Protection) (*State, *Stats, error) {
	return c.solver.Solve(core.Input{Demands: d, Prot: prot, Prev: c.current})
}

// ComputeInput exposes the full input surface (capacity overrides,
// uncertain flows, down elements, rate caps/floors/pins).
func (c *Controller) ComputeInput(in core.Input) (*State, *Stats, error) {
	if in.Prev == nil {
		in.Prev = c.current
	}
	return c.solver.Solve(in)
}

// ComputeMaxMin computes an approximately max-min fair FFC configuration
// (§5.3) with growth factor alpha (e.g. 2, or smaller for tighter fairness).
func (c *Controller) ComputeMaxMin(d Demands, prot Protection, alpha float64) (*State, error) {
	res, err := c.solver.SolveMaxMin(core.Input{Demands: d, Prot: prot, Prev: c.current}, alpha, 0)
	if err != nil {
		return nil, err
	}
	return res.State, nil
}

// PlanUpdate computes a congestion-free multi-step update from the
// installed configuration to target, robust to kc cumulative configuration
// faults (§5.2).
func (c *Controller) PlanUpdate(target *State, kc, maxSteps int) (*UpdatePlan, error) {
	return c.solver.PlanUpdate(c.current, target, kc, maxSteps)
}

// VerifyDataPlane exhaustively checks st against every combination of up to
// ke link and kv switch failures; nil means the guarantee holds.
// Exponential in (ke, kv): intended for tests and small networks.
func (c *Controller) VerifyDataPlane(st *State, ke, kv int) *Violation {
	return core.VerifyDataPlane(c.net, c.tun, st, ke, kv, nil)
}

// VerifyControlPlane exhaustively checks st against every set of up to kc
// stale switches relative to the installed configuration.
func (c *Controller) VerifyControlPlane(st *State, kc int) *Violation {
	return core.VerifyControlPlane(c.net, c.tun, st, c.current, kc, c.solver.Opts.RateLimiter, nil)
}

// DemandUncertainty re-exports the §9 demand-misprediction protection for
// networks without rate control.
type DemandUncertainty = core.DemandUncertainty

// MLUResult reports a MinMLU computation.
type MLUResult struct {
	State *State
	// MLU is the planned maximum link utilization (may exceed 1 when the
	// offered demand does not fit).
	MLU float64
	// FaultMLU is the planned worst-case utilization across the protected
	// fault/misprediction cases (0 when no protection was requested).
	FaultMLU float64
}

// ComputeMinMLU runs the §5.4 objective for networks that cannot rate-
// control ingress traffic: carry the entire demand, minimizing the maximum
// link utilization, optionally with control-plane FFC (prot.Kc) and §9
// demand-misprediction protection.
func (c *Controller) ComputeMinMLU(d Demands, prot Protection, du DemandUncertainty) (*MLUResult, error) {
	opts := c.solver.Opts
	opts.Objective = core.MinMLU
	solver := core.NewSolver(c.net, c.tun, opts)
	st, stats, err := solver.Solve(core.Input{Demands: d, Prot: prot, Prev: c.current, Demand: du})
	if err != nil {
		return nil, err
	}
	return &MLUResult{State: st, MLU: stats.MLU, FaultMLU: stats.FaultMLU}, nil
}

// PlanCapacityFor solves the §3.3 provisioning problem: the per-link
// capacity additions (and their total) needed so the full demand is
// carried with the given protection level. cost weights expansion per link
// (nil = unit cost).
func (c *Controller) PlanCapacityFor(d Demands, prot Protection, cost func(LinkID) float64) (map[LinkID]float64, float64, error) {
	opts := c.solver.Opts
	opts.Objective = core.PlanCapacity
	opts.CapacityCost = cost
	planner := core.NewSolver(c.net, c.tun, opts)
	_, stats, err := planner.Solve(core.Input{Demands: d, Prot: prot, Prev: c.current})
	if err != nil {
		return nil, 0, err
	}
	var total float64
	for _, x := range stats.AddedCapacity {
		total += x
	}
	return stats.AddedCapacity, total, nil
}

// ShadowPrices computes each link's marginal throughput value at the given
// demands and protection level — which links are worth upgrading.
func (c *Controller) ShadowPrices(d Demands, prot Protection) (map[LinkID]float64, error) {
	_, stats, err := c.Compute(d, prot)
	if err != nil {
		return nil, err
	}
	return stats.LinkShadowPrice, nil
}

// FailureCase re-exports core's anticipated-fault-set type for
// PerCaseOptimal.
type FailureCase = core.FailureCase

// SingleLinkFailureCases enumerates one case per physical link.
func SingleLinkFailureCases(net *Network) []FailureCase { return core.SingleLinkCases(net) }

// PerCaseOptimal computes the Suchara-style comparison point (§9 related
// work): shared rates with an arbitrary precomputed optimal split per
// anticipated failure case. It upper-bounds what any proactive rescaling
// scheme (including FFC) can carry on the same cases, at the cost of
// needing per-case forwarding state in switches.
func (c *Controller) PerCaseOptimal(d Demands, cases []FailureCase) (*State, *Stats, error) {
	return c.solver.SolvePerCaseOptimal(core.Input{Demands: d, Prev: c.current}, cases)
}

// PriorityState is the result of a multi-priority cascade (§5.1), highest
// class first.
type PriorityState struct {
	Class  string
	Prot   Protection
	State  *State
	Demand float64
}

// ComputePriorities runs the §5.1 cascade: classes are computed highest
// first, each against the residual capacity left by the classes above it.
// protections must be ordered high→low and non-increasing.
func (c *Controller) ComputePriorities(classes []string, demands []Demands, protections []Protection) ([]PriorityState, error) {
	if len(classes) != len(demands) || len(classes) != len(protections) {
		return nil, fmt.Errorf("ffc: classes/demands/protections length mismatch")
	}
	for i := 1; i < len(protections); i++ {
		p, q := protections[i-1], protections[i]
		if q.Kc > p.Kc || q.Ke > p.Ke || q.Kv > p.Kv {
			return nil, fmt.Errorf("ffc: lower class %q has stronger protection than %q (§5.1 requires kh ≥ kl)", classes[i], classes[i-1])
		}
	}
	residual := map[LinkID]float64{}
	for _, l := range c.net.Links {
		residual[l.ID] = l.Capacity
	}
	var out []PriorityState
	for i := range classes {
		caps := make(map[LinkID]float64, len(residual))
		for k, v := range residual {
			caps[k] = v
		}
		st, _, err := c.solver.Solve(core.Input{
			Demands: demands[i], Prot: protections[i], Prev: c.current, Capacity: caps,
		})
		if err != nil {
			return nil, fmt.Errorf("ffc: class %q: %w", classes[i], err)
		}
		// §5.1: deduct the class's actual traffic (weights×rate), not its
		// allocation — protection headroom stays usable by lower classes,
		// which priority queueing sheds first under faults.
		for l, u := range st.ActualLinkLoads(c.tun) {
			residual[l] -= u
			if residual[l] < 0 {
				residual[l] = 0
			}
		}
		out = append(out, PriorityState{Class: classes[i], Prot: protections[i], State: st, Demand: demands[i].Total()})
	}
	return out, nil
}
