package sim

import (
	"math"
	"testing"

	"ffc/internal/core"
)

// TestWarmStartMatchesColdRun replays the same scenario with and without
// RunConfig.WarmStart and checks interval-level equivalence. The comparison
// is tolerance-based, not bit-exact, by design: a warm re-solve may land on
// a different vertex among alternate optima, so per-flow allocations (and
// hence loss under faults) can legitimately differ — but every interval's
// demand and granted throughput are optimal-value quantities and must
// match. NoCarryover keeps interval demands independent of the chosen
// vertex so the per-interval comparison stays meaningful; Kc is 0 so the
// previous state does not feed back into the LP.
func TestWarmStartMatchesColdRun(t *testing.T) {
	sc := testScenario(t, 33, 8, 1.0)
	for _, prot := range []core.Protection{core.None, {Ke: 1}, {Ke: 2, Kv: 1}} {
		cold, err := Run(sc, RunConfig{Prot: prot, NoCarryover: true})
		if err != nil {
			t.Fatalf("prot %v cold: %v", prot, err)
		}
		warm, err := Run(sc, RunConfig{Prot: prot, NoCarryover: true, WarmStart: true})
		if err != nil {
			t.Fatalf("prot %v warm: %v", prot, err)
		}
		if cold.Intervals != warm.Intervals || len(cold.Timeline) != len(warm.Timeline) {
			t.Fatalf("prot %v: interval counts diverged (%d vs %d)", prot, cold.Intervals, warm.Intervals)
		}
		if cold.InfeasibleIntervals != warm.InfeasibleIntervals {
			t.Fatalf("prot %v: infeasible-interval counts diverged (%d vs %d)",
				prot, cold.InfeasibleIntervals, warm.InfeasibleIntervals)
		}
		for i := range cold.Timeline {
			c, w := cold.Timeline[i], warm.Timeline[i]
			if math.Abs(c.Demand-w.Demand) > 1e-9*(1+c.Demand) {
				t.Fatalf("prot %v interval %d: demand %g vs %g (fault replay diverged)", prot, i, c.Demand, w.Demand)
			}
			if math.Abs(c.Granted-w.Granted) > 1e-6*(1+c.Granted) {
				t.Fatalf("prot %v interval %d: granted %g (cold) vs %g (warm)", prot, i, c.Granted, w.Granted)
			}
			if c.LinkFaults != w.LinkFaults || c.SwitchFaults != w.SwitchFaults || c.StaleSwitches != w.StaleSwitches {
				t.Fatalf("prot %v interval %d: fault replay diverged (%+v vs %+v)", prot, i, c, w)
			}
		}
		for _, agg := range []struct {
			name string
			c, w float64
		}{
			{"demand", cold.Total.DemandBytes, warm.Total.DemandBytes},
			{"granted", cold.Total.GrantedBytes, warm.Total.GrantedBytes},
		} {
			if math.Abs(agg.c-agg.w) > 1e-7*(1+math.Abs(agg.c)) {
				t.Fatalf("prot %v: total %s %g (cold) vs %g (warm)", prot, agg.name, agg.c, agg.w)
			}
		}
	}
}

// TestWarmStartCarryoverStaysFeasible exercises the full accounting path
// (carryover, faults, losses) under WarmStart: totals must stay within the
// physically meaningful envelope even though vertex choices may reshape the
// per-interval loss breakdown relative to a cold run.
func TestWarmStartCarryoverStaysFeasible(t *testing.T) {
	sc := testScenario(t, 34, 8, 1.0)
	res, err := Run(sc, RunConfig{Prot: core.Protection{Ke: 1}, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals != 8 {
		t.Fatalf("intervals %d, want 8", res.Intervals)
	}
	if res.Total.GrantedBytes <= 0 || res.Total.GrantedBytes > res.Total.DemandBytes+1e-6 {
		t.Fatalf("granted %g outside (0, demand=%g]", res.Total.GrantedBytes, res.Total.DemandBytes)
	}
	if res.Total.LossBytes < 0 || res.Total.LossBytes > res.Total.GrantedBytes+1e-6 {
		t.Fatalf("loss %g outside [0, granted=%g]", res.Total.LossBytes, res.Total.GrantedBytes)
	}
}
